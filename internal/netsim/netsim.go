// Package netsim is a flow-level network simulator over the two-level
// topology. It reproduces the modelling approach of the paper's §6.6
// simulator: flows share links according to a pluggable bandwidth-allocation
// policy — max-min fairness to emulate TCP, or a Varys-style coflow
// scheduler (SEBF + MADD with work-conserving backfill).
//
// The simulator is event-driven: whenever the active flow set changes, all
// flow rates are recomputed and a single completion event is scheduled for
// the earliest-finishing flow. Flows between machines in the same rack use
// only the two NICs (full bisection in-rack); cross-rack flows additionally
// traverse the oversubscribed rack uplink and downlink.
//
// Determinism obligations: flow rates and completion times are a pure
// function of the Start/stop call sequence — allocation policies iterate
// flows and links in id order, and same-instant events rely on the
// internal/des FIFO tie-break, so callers must start flows in a
// deterministic order.
package netsim

import (
	"fmt"
	"math"

	"corral/internal/des"
	"corral/internal/topology"
	"corral/internal/trace"
)

// CoflowID groups flows whose collective completion matters (e.g., one
// job's shuffle). Zero means "no coflow" — such flows are scheduled as
// plain TCP-like flows even under the coflow policy.
type CoflowID int64

// Flow is one in-flight transfer.
type Flow struct {
	ID        int64
	Src, Dst  int // machine indices
	Bytes     float64
	Coflow    CoflowID
	JobID     int // for cross-rack accounting; -1 for background/unattributed
	CrossRack bool

	path      []topology.LinkID
	pathID    int32 // dense id interned by Network.StartPath; 0 = not interned
	remaining float64
	rate      float64
	lastRate  float64 // last rate reported to the tracer
	done      func(*Flow)
	canceled  bool
}

// PathID returns the flow's interned path identity: flows with equal link
// paths share a PathID. Valid ids start at 1; 0 means the flow was built
// outside Network.StartPath (tests constructing Flows directly) and cannot
// be grouped.
func (f *Flow) PathID() int32 { return f.pathID }

// Canceled reports whether the flow was aborted via Network.Cancel.
func (f *Flow) Canceled() bool { return f.canceled }

// Remaining returns the bytes this flow still has to transfer (as of the
// last rate recomputation).
func (f *Flow) Remaining() float64 { return f.remaining }

// Rate returns the flow's current allocated rate in bytes/sec.
func (f *Flow) Rate() float64 { return f.rate }

// Policy allocates rates to the active flows. Implementations must fill
// f.rate for every flow, never exceed any link capacity in aggregate, and
// never assign a negative rate.
type Policy interface {
	// Allocate assigns rates to flows. caps[linkID] is each link's
	// capacity; scratch is a reusable buffer of the same length holding
	// remaining capacity (contents are overwritten).
	Allocate(flows []*Flow, caps []float64, scratch []float64)
	Name() string
}

// Network multiplexes flows over a cluster's links.
type Network struct {
	sim     *des.Simulator
	cluster *topology.Cluster
	policy  Policy

	flows    []*Flow
	nextID   int64
	caps     []float64 // current capacity: baseCaps scaled by link faults
	baseCaps []float64 // capacities as registered by the topology
	scratch  []float64

	// Path interning: flows with byte-identical link paths share a dense
	// pathID (starting at 1), the equivalence-class key GroupedMaxMin
	// groups on. pathKey is a reused encoding buffer — map lookups via
	// pathIDs[string(pathKey)] do not allocate; only the first sighting of
	// a distinct path does. pathsByID[id] is the canonical (never mutated)
	// link slice for each interned path: every flow's path field aliases
	// it, so callers may pass reusable path buffers to StartPath and
	// caches like IncrementalMaxMin can hold path references across rounds.
	pathIDs   map[string]int32
	pathKey   []byte
	pathsByID [][]topology.LinkID
	numPaths  int32
	startBuf  []topology.LinkID // reused by Start for AppendPath

	completedScratch []*Flow // reused each recompute for finished flows

	// Flow pooling (SetFlowPooling): canceled and completed path flows are
	// recycled through flowPool once fully retired — after accounting,
	// tracing and done callbacks. Loopback flows are never pooled: their
	// completion closure reads the object after an arbitrary delay.
	flowPool  []*Flow
	poolFlows bool

	// Flow-epoch batching (SetFlowEpoch): when positive, recomputes
	// triggered by flow-set changes are quantized up to the next epoch
	// boundary instead of running immediately; completion events still
	// fire exactly. recomputeAt is the pending quantized target.
	flowEpoch   des.Time
	recomputeAt des.Time

	lastAdvance  des.Time
	completionEv *des.Event
	recomputeEv  *des.Event

	// LoopbackRate is the transfer rate for src==dst "flows" (data that
	// never touches the network, e.g. a local disk read). Defaults to
	// effectively instantaneous.
	LoopbackRate float64

	// OnAllocate, if set, runs after every rate recomputation — the hook
	// the invariant monitor uses to audit each allocation the moment it is
	// made (AuditFeasibility). It observes state only; it must not start,
	// cancel or re-rate flows, and it must be deterministic.
	OnAllocate func()

	// Trace, if enabled, receives flow lifecycle events and per-link
	// utilization samples at recompute points. A nil tracer (the default)
	// keeps every emission on the disabled fast path.
	Trace *trace.Tracer

	// Tracer state, lazily allocated on first traced recompute: last
	// reported per-link utilization (emit-on-change) and a per-link load
	// accumulator reused across recomputes.
	prevUtil  []float64
	traceLoad []float64

	// Accounting.
	totalCross  float64
	crossByJob  map[int]float64
	totalBytes  float64
	flowsServed int64
	linkBytes   []float64 // bytes carried per link, for utilization stats
}

// New creates a network over the cluster driven by the simulator's clock.
func New(sim *des.Simulator, cluster *topology.Cluster, policy Policy) *Network {
	links := cluster.Links()
	caps := make([]float64, len(links))
	for i, l := range links {
		caps[i] = l.Capacity
	}
	base := make([]float64, len(caps))
	copy(base, caps)
	return &Network{
		sim:       sim,
		cluster:   cluster,
		policy:    policy,
		caps:      caps,
		baseCaps:  base,
		scratch:   make([]float64, len(links)),
		pathIDs:   make(map[string]int32),
		pathsByID: [][]topology.LinkID{nil}, // index 0: the un-interned id

		LoopbackRate: 1e12, // ~instantaneous local copy
		crossByJob:   make(map[int]float64),
		linkBytes:    make([]float64, len(links)),
	}
}

// ActiveFlows returns the number of currently active flows.
func (n *Network) ActiveFlows() int { return len(n.flows) }

// CrossRackBytes returns total bytes carried over rack-to-core links.
func (n *Network) CrossRackBytes() float64 { return n.totalCross }

// CrossRackBytesByJob returns cross-rack bytes attributed to jobID.
func (n *Network) CrossRackBytesByJob(jobID int) float64 { return n.crossByJob[jobID] }

// TotalBytes returns all bytes transferred over the network (excluding
// loopback copies).
func (n *Network) TotalBytes() float64 { return n.totalBytes }

// FlowsServed returns the number of completed flows.
func (n *Network) FlowsServed() int64 { return n.flowsServed }

// SetFlowPooling enables (or disables) recycling of retired Flow objects.
// With pooling on, a *Flow handle is only valid until the flow completes
// or its cancellation is processed: callers must drop every reference in
// the done callback (or after Cancel) and never touch a flow afterward.
// The runtime follows that discipline; direct test/tool users of Network
// should leave pooling off unless they do too. Loopback (src==dst) flows
// are never pooled.
func (n *Network) SetFlowPooling(on bool) { n.poolFlows = on }

// SetFlowEpoch sets the recompute-batching quantum. With a positive
// epoch, rate recomputations triggered by flow starts, cancels and link
// capacity changes are deferred to the next multiple of the epoch, so a
// burst of changes inside one quantum is absorbed by a single
// re-waterfill — the coarse knob for the huge-shuffle tail at datacenter
// scale. Flow completions still recompute exactly (completion times stay
// event-driven); the trade-off is that a mid-epoch start or cancel keeps
// the old allocation until the boundary. Zero (the default) restores
// exact recompute-on-change behavior. Determinism is unaffected: the
// quantized schedule is a pure function of the change sequence.
func (n *Network) SetFlowEpoch(e des.Time) {
	if e < 0 {
		panic(fmt.Sprintf("netsim: negative flow epoch %g", float64(e)))
	}
	n.flowEpoch = e
}

// Start begins a transfer of bytes from machine src to machine dst.
// done, if non-nil, is invoked when the transfer finishes. Zero-byte flows
// complete via an immediate event (never synchronously), so callers can
// safely start them from inside other completion callbacks.
func (n *Network) Start(src, dst int, bytes float64, coflow CoflowID, jobID int, done func(*Flow)) *Flow {
	if src == dst {
		return n.startPath(nil, false, bytes, coflow, jobID, src, dst, done)
	}
	// startBuf is reusable: startPath rebinds the flow to the interned
	// canonical path before returning.
	path, cross := n.cluster.AppendPath(n.startBuf, src, dst)
	n.startBuf = path[:0]
	return n.startPath(path, cross, bytes, coflow, jobID, src, dst, done)
}

// StartPath begins a transfer over an explicit link path. The execution
// engine uses this for rack-aggregated shuffle transfers whose "source" is
// a set of machines rather than one NIC. An empty path is a loopback copy
// at LoopbackRate, outside network sharing.
func (n *Network) StartPath(path []topology.LinkID, crossRack bool, bytes float64, coflow CoflowID, jobID int, done func(*Flow)) *Flow {
	return n.startPath(path, crossRack, bytes, coflow, jobID, -1, -1, done)
}

// startPath is the shared implementation: src/dst are the real endpoints
// when known (Start), -1 for rack-aggregated path flows (StartPath), so
// the trace records whatever endpoint identity exists.
func (n *Network) startPath(path []topology.LinkID, crossRack bool, bytes float64, coflow CoflowID, jobID int, src, dst int, done func(*Flow)) *Flow {
	if bytes < 0 {
		panic(fmt.Sprintf("netsim: negative flow size %g", bytes))
	}
	n.nextID++
	var f *Flow
	if n.poolFlows && len(path) > 0 && len(n.flowPool) > 0 {
		f = n.flowPool[len(n.flowPool)-1]
		n.flowPool[len(n.flowPool)-1] = nil
		n.flowPool = n.flowPool[:len(n.flowPool)-1]
	} else {
		f = new(Flow)
	}
	*f = Flow{
		ID:        n.nextID,
		Src:       src,
		Dst:       dst,
		Bytes:     bytes,
		Coflow:    coflow,
		JobID:     jobID,
		CrossRack: crossRack,
		path:      path,
		done:      done,

		remaining: bytes,
	}
	if len(path) == 0 {
		// Local copy: fixed loopback rate, not subject to network sharing.
		d := des.Time(bytes / n.LoopbackRate)
		n.sim.After(d, func() {
			if f.canceled {
				return
			}
			n.flowsServed++
			if f.done != nil {
				f.done(f)
			}
		})
		return f
	}
	f.pathID = n.internPath(path)
	f.path = n.pathsByID[f.pathID] // canonical slice; caller may reuse its buffer
	n.Trace.FlowStart(float64(n.sim.Now()), f.ID, jobID, src, dst, bytes, crossRack)
	n.flows = append(n.flows, f)
	n.scheduleRecompute()
	return f
}

// internPath returns the dense id shared by every flow with this exact link
// path, assigning the next id on first sight. Ids start at 1 so the zero
// value marks un-interned flows.
func (n *Network) internPath(path []topology.LinkID) int32 {
	n.pathKey = n.pathKey[:0]
	for _, l := range path {
		n.pathKey = append(n.pathKey, byte(l), byte(l>>8), byte(l>>16), byte(l>>24))
	}
	if id, ok := n.pathIDs[string(n.pathKey)]; ok {
		return id
	}
	n.numPaths++
	n.pathIDs[string(n.pathKey)] = n.numPaths
	canon := make([]topology.LinkID, len(path))
	copy(canon, path)
	n.pathsByID = append(n.pathsByID, canon)
	return n.numPaths
}

// NumPaths returns how many distinct link paths the network has seen — the
// upper bound on GroupedMaxMin's equivalence-class count.
func (n *Network) NumPaths() int { return int(n.numPaths) }

// Cancel aborts an in-flight flow: its bandwidth is released at the next
// recomputation and its completion callback never fires. Bytes already
// transferred still count toward cross-rack accounting (they were really
// sent). Canceling a finished or already-canceled flow is a no-op.
// Loopback flows (empty path) cannot be canceled — their completion event
// is already queued — but their callback is suppressed.
func (n *Network) Cancel(f *Flow) {
	if f == nil || f.canceled {
		return
	}
	f.canceled = true
	if len(f.path) > 0 {
		n.scheduleRecompute()
	}
}

// SetLinkCapacityFactor scales link id's capacity to factor times the
// capacity registered by the topology (link faults, §7 "Dealing with
// failures"). Factor 1 restores the link; factor 0 fails it outright —
// flows crossing a failed link park at rate zero and resume when a later
// call raises the factor. In-flight flows re-share at the next
// recomputation, which this call schedules.
func (n *Network) SetLinkCapacityFactor(id topology.LinkID, factor float64) {
	if factor < 0 {
		panic(fmt.Sprintf("netsim: negative link capacity factor %g", factor))
	}
	n.caps[id] = n.baseCaps[id] * factor
	n.Trace.LinkCap(float64(n.sim.Now()), int(id), n.caps[id])
	n.scheduleRecompute()
}

// LinkCapacity returns link id's current (possibly fault-scaled) capacity.
func (n *Network) LinkCapacity(id topology.LinkID) float64 { return n.caps[id] }

// scheduleRecompute coalesces multiple same-instant flow-set changes into a
// single rate recomputation. With a flow epoch set it instead quantizes
// the recompute up to the next epoch boundary, coalescing every change in
// the same quantum into one re-waterfill.
func (n *Network) scheduleRecompute() {
	if n.flowEpoch > 0 {
		at := des.Time(math.Ceil(float64(n.sim.Now())/float64(n.flowEpoch))) * n.flowEpoch
		if at < n.sim.Now() {
			at = n.sim.Now() // ceil·epoch rounded an ulp below now
		}
		//corralvet:ok floateq exact identity intended: both sides are the same quantized epoch boundary; near-equal targets are distinct boundaries
		if n.recomputeEv != nil && !n.recomputeEv.Canceled() && n.recomputeAt == at {
			return
		}
		n.recomputeAt = at
		n.recomputeEv = n.sim.After(at-n.sim.Now(), n.recompute)
		return
	}
	//corralvet:ok floateq exact identity intended: both sides are the same des.Time instant; near-equal instants are distinct events
	if n.recomputeEv != nil && !n.recomputeEv.Canceled() && n.recomputeEv.At() == n.sim.Now() {
		return
	}
	n.recomputeEv = n.sim.After(0, n.recompute)
}

// advance charges elapsed time against every active flow's remaining bytes.
func (n *Network) advance() {
	now := n.sim.Now()
	dt := float64(now - n.lastAdvance)
	if dt > 0 {
		for _, f := range n.flows {
			moved := f.rate * dt
			f.remaining -= moved
			if f.remaining < 0 {
				moved += f.remaining // clamp the overshoot
				f.remaining = 0
			}
			for _, l := range f.path {
				n.linkBytes[l] += moved
			}
		}
	}
	n.lastAdvance = now
}

const completionEpsilon = 1e-3 // bytes; below this a flow is done

// recompute advances flows, completes finished ones, reallocates rates and
// schedules the next completion event.
func (n *Network) recompute() {
	// Clear the pending-recompute marker first: this call consumes it.
	// Without this, a flow-set change made by a *later* event at the same
	// instant would see a stale recomputeEv with At() == Now() and wrongly
	// skip scheduling, leaving flows without rates or completion events.
	n.recomputeEv = nil
	n.advance()

	// Complete finished flows and drop canceled ones. Completion callbacks
	// may start new flows; those schedule another recompute event rather
	// than recursing. The survivor filter runs in place (write index trails
	// read index) and finished flows land in a reused scratch slice, so a
	// steady-state recompute performs no slice allocations.
	completed := n.completedScratch[:0]
	w := 0
	for _, f := range n.flows {
		switch {
		case f.canceled:
			// Account what actually crossed the wire before the abort.
			sent := f.Bytes - f.remaining
			n.Trace.FlowCancel(float64(n.sim.Now()), f.ID, sent)
			if sent > 0 {
				n.totalBytes += sent
				if f.CrossRack {
					n.totalCross += sent
					if f.JobID >= 0 {
						n.crossByJob[f.JobID] += sent
					}
				}
			}
			f.rate = 0
			if n.poolFlows {
				// Fully retired: accounted, traced, no callback pending
				// (cancel suppresses done). Recycle the object.
				n.flowPool = append(n.flowPool, f)
			}
		case f.remaining <= completionEpsilon:
			completed = append(completed, f)
		default:
			n.flows[w] = f
			w++
		}
	}
	for i := w; i < len(n.flows); i++ {
		n.flows[i] = nil // release dropped flows to the GC
	}
	n.flows = n.flows[:w]
	for _, f := range completed {
		f.remaining = 0
		f.rate = 0
		n.Trace.FlowFinish(float64(n.sim.Now()), f.ID, f.Bytes)
		n.flowsServed++
		n.totalBytes += f.Bytes
		if f.CrossRack {
			n.totalCross += f.Bytes
			if f.JobID >= 0 {
				n.crossByJob[f.JobID] += f.Bytes
			}
		}
		if f.done != nil {
			f.done(f)
		}
		if n.poolFlows {
			// The done callback has run (and per the pooling contract
			// dropped its references); the object is free to recycle. A
			// flow started from inside a later done callback in this batch
			// may legitimately reuse it.
			n.flowPool = append(n.flowPool, f)
		}
	}
	for i := range completed {
		completed[i] = nil // don't let the scratch slice pin finished flows
	}
	n.completedScratch = completed[:0]

	if n.completionEv != nil {
		n.completionEv.Cancel()
		n.completionEv = nil
	}
	if len(n.flows) == 0 {
		n.traceAllocation() // report links draining to zero utilization
		return
	}

	n.policy.Allocate(n.flows, n.caps, n.scratch)
	if n.OnAllocate != nil {
		n.OnAllocate()
	}
	n.traceAllocation()

	// Next completion.
	next := math.Inf(1)
	for _, f := range n.flows {
		if f.rate <= 0 {
			continue
		}
		t := f.remaining / f.rate
		if t < next {
			next = t
		}
	}
	if math.IsInf(next, 1) {
		// All flows starved; nothing will complete until the flow set
		// changes again. Legitimate only when a failed link (capacity
		// forced to zero by SetLinkCapacityFactor) is parking every flow:
		// those resume when the link recovers, which schedules another
		// recompute. A starved flow whose links all have capacity is a
		// modelling bug — the allocation policies guarantee a positive
		// rate otherwise.
		for _, f := range n.flows {
			parked := false
			for _, l := range f.path {
				if n.caps[l] <= 0 {
					parked = true
					break
				}
			}
			if !parked {
				panic("netsim: active flow starved with no pending change")
			}
		}
		return
	}
	n.completionEv = n.sim.After(des.Time(next), n.recompute)
}

// AuditFeasibility checks the current allocation against the per-link
// feasibility invariant: no negative rates, and the aggregate rate over
// each link within capacity (relative slack plus a small absolute epsilon
// for float rounding). It returns nil when feasible, an error naming the
// first violation otherwise. Intended to be called from OnAllocate by the
// invariant monitor.
func (n *Network) AuditFeasibility(slack float64) error {
	const absEps = 1e-3 // bytes/sec; rates are O(1e8), rounding is far below
	load := n.scratchLoad()
	for _, f := range n.flows {
		if f.canceled {
			continue
		}
		if f.rate < 0 {
			return fmt.Errorf("netsim audit: flow %d has negative rate %g", f.ID, f.rate)
		}
		for _, l := range f.path {
			load[l] += f.rate
		}
	}
	for l, sum := range load {
		if sum > n.caps[l]*(1+slack)+absEps {
			return fmt.Errorf("netsim audit: link %d carries %g B/s, capacity %g", l, sum, n.caps[l])
		}
	}
	return nil
}

// scratchLoad returns a zeroed per-link accumulator (reusing the policy
// scratch buffer is unsafe mid-audit, so this allocates).
func (n *Network) scratchLoad() []float64 {
	return make([]float64, len(n.caps))
}

// LinkBytes returns the bytes carried so far by the given link.
func (n *Network) LinkBytes(id topology.LinkID) float64 { return n.linkBytes[id] }

// traceAllocation reports the outcome of a rate recomputation to the
// tracer: per-flow rate changes and per-link utilization changes, both
// emit-on-change so stable allocations cost nothing. Runs only with a
// tracer enabled; the whole walk is skipped on the disabled path.
func (n *Network) traceAllocation() {
	if !n.Trace.Enabled() {
		return
	}
	now := float64(n.sim.Now())
	if n.prevUtil == nil {
		n.prevUtil = make([]float64, len(n.caps))
		n.traceLoad = make([]float64, len(n.caps))
	}
	for l := range n.traceLoad {
		n.traceLoad[l] = 0
	}
	for _, f := range n.flows {
		//corralvet:ok floateq emit-on-change gate: exact rate identity means "nothing to report", near-equal rates are real changes
		if f.rate != f.lastRate {
			n.Trace.FlowRate(now, f.ID, f.rate)
			f.lastRate = f.rate
		}
		for _, l := range f.path {
			n.traceLoad[l] += f.rate
		}
	}
	for l, load := range n.traceLoad {
		util := 0.0
		if n.caps[l] > 0 {
			util = load / n.caps[l]
		}
		//corralvet:ok floateq emit-on-change gate: exact utilization identity means "nothing to report", near-equal samples are real changes
		if util != n.prevUtil[l] {
			n.Trace.LinkUtil(now, l, util)
			n.prevUtil[l] = util
		}
	}
}

// Rates returns a snapshot of (flow, rate) for inspection in tests.
func (n *Network) Rates() map[int64]float64 {
	out := make(map[int64]float64, len(n.flows))
	for _, f := range n.flows {
		out[f.ID] = f.rate
	}
	return out
}
