// Package snapshot defines the versioned, deterministic serialization of a
// complete mid-flight simulation: everything needed to reconstitute a run
// at an exact event index and prove the resumed run indistinguishable from
// an uninterrupted one.
//
// A Snapshot has three sections. Spec is the run's full input — cluster
// shape, scheduler, plan, jobs, every fault schedule, every option scalar —
// from which a runtime can be rebuilt from scratch. Meta pins the capture
// point (event index and simulated time). State is a deep export of every
// piece of observable simulation state at that point: the DES clock and
// pending event set, the RNG draw count, job/task/attempt lifecycle,
// network flows and link capacities, and the DFS block layout.
//
// Restore is replay-based: because a run is a pure function of its Spec
// (the determinism contract pinned since PR 1), the runtime rebuilds from
// Spec, re-fires exactly Meta.EventIndex events, and then audits the
// replayed live state field-by-field against the captured State — any
// mismatch is a hard error and an invariant-monitor violation, never a
// silent divergence. Closures (event callbacks, completion hooks) are
// therefore never serialized, and observer attachments (tracer, probe) are
// deliberately outside the snapshot: tracing must not perturb a run, so it
// must not perturb a snapshot either.
//
// Determinism obligations: encoding is canonical — struct field order,
// sorted keys, shortest round-trip floats via encoding/json — so equal
// states encode to equal bytes.
package snapshot

import (
	"corral/internal/dfs"
	"corral/internal/job"
	"corral/internal/netsim"
	"corral/internal/planner"
	"corral/internal/topology"
)

// Version is the current snapshot schema version. Decode rejects any other
// version outright: a newer writer's snapshot must fail loudly, never
// partially restore.
const Version = 1

// Snapshot is one captured mid-flight simulation.
type Snapshot struct {
	Version int
	Meta    Meta
	Spec    Spec
	State   State
}

// Meta pins where in the run the snapshot was taken.
type Meta struct {
	// EventIndex is the number of DES events fired before capture; restore
	// replays exactly this many events.
	EventIndex uint64
	// SimTime is the simulated time at capture, seconds.
	SimTime float64
	Seed    int64
	// Scheduler and Label identify the run for inspection tools.
	Scheduler string
	Label     string
}

// Failure mirrors runtime.Failure (kept here so the snapshot schema does
// not depend on the runtime package).
type Failure struct {
	At       float64
	Machine  int
	Downtime float64
}

// LinkFault mirrors runtime.LinkFault.
type LinkFault struct {
	At     float64
	Rack   int
	Factor float64
}

// AMFailure mirrors runtime.AMFailure.
type AMFailure struct {
	At    float64
	JobID int
}

// Corruption mirrors runtime.Corruption.
type Corruption struct {
	At      float64
	Machine int
}

// Spec is the complete run input: rebuilding a runtime from a Spec and
// replaying is what Restore does. Function-valued options (Probe, Trace,
// OnMachineRepair, a custom Network policy instance) are not part of the
// Spec — policies are recorded by Name and observers are reattached by the
// resumer.
type Spec struct {
	Topology  topology.Config
	Scheduler string
	// Policy names the bandwidth-sharing policy ("" selects the default
	// incremental max-min allocator, bit-identical to the grouped and
	// reference allocators).
	Policy string
	// FlowEpoch batches flow-rate recomputations to multiples of this many
	// simulated seconds (PR 9, additive). Pre-PR-9 snapshots decode this to
	// zero — exact, unbatched recomputation — so old snapshots restore with
	// unchanged semantics.
	FlowEpoch float64
	Seed      int64
	Plan      *planner.Plan
	Jobs      []*job.Job

	BlockSize            float64
	DelayNodeLocal       int
	DelayRackLocal       int
	OutputReplication    int
	Heartbeat            float64
	ReplanOnFailure      bool
	DisableReReplication bool
	StragglerFraction    float64
	StragglerSlowdown    float64
	Speculation          bool
	SpeculationThreshold float64
	AdhocShare           float64
	RemoteStorageInput   bool
	InMemoryInput        bool
	TaskFailureProb      float64
	MaxTaskAttempts      int
	RetryBackoff         float64
	BlacklistThreshold   int
	BlacklistCooldown    float64
	MaxAMAttempts        int
	AMRestartDelay       float64

	// Overload hardening (PR 8, additive): budgeted planning, replan-storm
	// suppression and admission control. Pre-PR-8 snapshots decode these to
	// zero — exactly the values that disable all three features — so old
	// snapshots restore with unchanged semantics.
	PlannerBudget       float64
	ReplanWindow        float64
	MaxReplansPerWindow int
	AdmissionLimit      int
	AdmissionQueueCap   int

	FailedMachines []int
	Failures       []Failure
	LinkFaults     []LinkFault
	AMFailures     []AMFailure
	Corruptions    []Corruption
}

// State is the deep export of every piece of observable simulation state.
type State struct {
	DES DESState
	// RNGDraws counts values drawn from the run's single seeded RNG stream
	// (shared by the runtime and the DFS) — replaying the same events must
	// consume exactly the same draws.
	RNGDraws uint64
	Runtime  RuntimeState
	Net      *netsim.State
	DFS      *dfs.StoreState
}

// DESState is the simulator core: clock, counters and the pending event
// set (firing times and FIFO sequence numbers; callbacks are rebuilt by
// replay).
type DESState struct {
	Now     float64
	Fired   uint64
	Seq     uint64
	Pending []PendingEvent
}

// PendingEvent is one queued DES event, sorted by (At, Seq).
type PendingEvent struct {
	At       float64
	Seq      uint64
	Canceled bool
}

// RuntimeState is the resource-manager and application-master layer.
type RuntimeState struct {
	FreeSlots       []int
	Dead            []bool
	DeadCount       int
	MachineOrder    []int
	Blacklisted     []bool
	MachineFailures []int
	FailedJobs      int
	RackLinkFactor  []float64
	// RecoverAt is the scheduled recovery time per machine; -1 encodes
	// "no recovery scheduled" (+Inf in memory, which JSON cannot carry).
	RecoverAt       []float64
	RepairBytes     float64
	Replans         int
	Active          int
	SWLoad          []int
	CoflowID        int64
	DispatchPending bool
	RetryPending    bool
	Declined        bool
	RunningPlanned  int
	RunningAdhoc    int
	HaveAdhoc       bool
	HavePlanned     bool
	LastRepairDone  float64
	// Overload-hardening state (PR 8, additive). Legacy runs never touch
	// any of it, so pre-PR-8 snapshots' zero values audit clean on restore:
	// ReplanCooldown in particular stores 0 for the baseline factor of 1
	// and only escalates when suppression is enabled.
	ReplansSuppressed   int
	DegradedFull        int
	DegradedIncremental int
	DegradedGreedy      int
	ReplanWindowEnd     float64
	ReplansInWindow     int
	ReplanCooldown      int
	ReplanPending       bool
	Admitted            int
	Deferred            int
	Shed                int
	MaxAdmissionQueue   int
	// AdmissionQueue holds the job IDs parked in the admission queue, in
	// FIFO order.
	AdmissionQueue []int
	Repairs        []RepairState
	Jobs           []JobState
	Running        []AttemptState
}

// RepairState is one re-replication operation, in daemon start order. The
// block is identified by its size and endpoints (block pointers cannot
// serialize); the DFS section carries the full replica layout.
type RepairState struct {
	Src      int
	Dst      int
	Slot     int
	Bytes    float64
	Done     bool
	Canceled bool
}

// JobState is one job's application-master state.
type JobState struct {
	ID         int
	Submitted  bool
	Completion float64
	Failed     bool
	FailReason string
	AMDown     bool
	AMAttempt  int
	AMFailures int
	Skips      int
	// Constrained distinguishes an empty rack constraint from "none"
	// (allowedRacks == nil means unconstrained placement).
	Constrained  bool
	AllowedRacks []int
	// HasAssignment/AssignedRacks/Priority mirror the planner assignment.
	HasAssignment bool
	AssignedRacks []int
	Priority      int
	TasksLaunched int
	TaskSeconds   float64
	ReduceSeconds []float64
	RacksTouched  []int // sorted
	StagesLeft    int
	Stages        []StageState
}

// StageState is one DAG stage's execution state.
type StageState struct {
	Phase            int
	Coflow           int64
	RemoteStorage    bool
	UpstreamMachines []int
	PendingMaps      int
	MapsDone         int
	MapsOnRack       []int
	MapsOnMachine    []MachineCount // sorted by machine
	// ByMachine/ByRack are the locality queues, sorted by key. Queue
	// contents include lazily-cleaned stale entries: future pops depend on
	// them, so equality must too.
	ByMachine      []TaskQueue
	ByRack         []TaskQueue
	AnyPref        []int
	Anywhere       []int
	Maps           []TaskState
	Reduces        []TaskState
	ReduceQ        []int
	ReducesDone    int
	ReduceMachines []int
}

// MachineCount is one (machine, count) pair.
type MachineCount struct {
	Machine int
	Count   int
}

// TaskQueue is one locality-queue bucket: the key (machine or rack index)
// and the queued task indexes in stored order.
type TaskQueue struct {
	Key   int
	Tasks []int
}

// TaskState is one logical task's lifecycle state.
type TaskState struct {
	Assigned   bool
	Speculated bool
	Attempts   int
	DoneOn     int
	SrcMachine int     // maps only; -1 otherwise
	Bytes      float64 // maps only
}

// AttemptState is one in-flight task attempt, in (machine index, tracking
// order) capture order.
type AttemptState struct {
	Machine  int
	JobID    int
	Stage    int
	Role     string // "map" or "reduce"
	Task     int
	Attempts int
	Started  float64
	NoSpec   bool
	NFlows   int
	NEvents  int
}
