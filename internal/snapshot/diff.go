package snapshot

// Field-level structural diff, used two ways: the restore audit compares a
// replayed live State against the captured one (any difference is a hard
// restore error and an invariant violation), and corralsnap diff renders
// the differences between two snapshot files for inspection.
//
// The walk is generic reflection: structs by field name, slices by index,
// maps by sorted key, pointers dereferenced. Leaves compare with
// reflect.DeepEqual — floats differ only when their bits differ, which is
// exactly the bit-identical contract the equivalence harness pins.

import (
	"fmt"
	"reflect"
	"sort"
)

// MaxDiffs caps the entries a diff reports; past it the walk stops and the
// last entry says how.
const MaxDiffs = 40

// Diff returns human-readable field paths that differ between two
// snapshots (nil-safe; a nil vs non-nil pair is one difference).
func Diff(a, b *Snapshot) []string {
	return diffValues("", reflect.ValueOf(a), reflect.ValueOf(b))
}

// DiffStates diffs just the State sections — the restore-audit entry
// point.
func DiffStates(a, b *State) []string {
	return diffValues("state", reflect.ValueOf(a), reflect.ValueOf(b))
}

func diffValues(path string, a, b reflect.Value) []string {
	var out []string
	walkDiff(path, a, b, &out)
	return out
}

func walkDiff(path string, a, b reflect.Value, out *[]string) {
	if len(*out) >= MaxDiffs {
		return
	}
	if a.IsValid() != b.IsValid() {
		*out = append(*out, fmt.Sprintf("%s: only one side present", path))
		return
	}
	if !a.IsValid() {
		return
	}
	if a.Type() != b.Type() {
		*out = append(*out, fmt.Sprintf("%s: type %s vs %s", path, a.Type(), b.Type()))
		return
	}
	switch a.Kind() {
	case reflect.Pointer, reflect.Interface:
		if a.IsNil() != b.IsNil() {
			*out = append(*out, fmt.Sprintf("%s: nil vs non-nil", path))
			return
		}
		if a.IsNil() {
			return
		}
		walkDiff(path, a.Elem(), b.Elem(), out)
	case reflect.Struct:
		t := a.Type()
		for i := 0; i < t.NumField(); i++ {
			if !t.Field(i).IsExported() {
				continue
			}
			walkDiff(joinPath(path, t.Field(i).Name), a.Field(i), b.Field(i), out)
		}
	case reflect.Slice, reflect.Array:
		if a.Len() != b.Len() {
			*out = append(*out, fmt.Sprintf("%s: length %d vs %d", path, a.Len(), b.Len()))
			return
		}
		for i := 0; i < a.Len(); i++ {
			walkDiff(fmt.Sprintf("%s[%d]", path, i), a.Index(i), b.Index(i), out)
			if len(*out) >= MaxDiffs {
				appendTruncated(path, out)
				return
			}
		}
	case reflect.Map:
		keys := make([]string, 0, a.Len()+b.Len())
		byKey := make(map[string][2]reflect.Value)
		for _, k := range a.MapKeys() {
			ks := fmt.Sprintf("%v", k.Interface())
			byKey[ks] = [2]reflect.Value{a.MapIndex(k), b.MapIndex(k)}
			keys = append(keys, ks)
		}
		for _, k := range b.MapKeys() {
			ks := fmt.Sprintf("%v", k.Interface())
			if _, ok := byKey[ks]; !ok {
				byKey[ks] = [2]reflect.Value{a.MapIndex(k), b.MapIndex(k)}
				keys = append(keys, ks)
			}
		}
		sort.Strings(keys)
		for _, ks := range keys {
			pair := byKey[ks]
			walkDiff(fmt.Sprintf("%s[%s]", path, ks), pair[0], pair[1], out)
			if len(*out) >= MaxDiffs {
				appendTruncated(path, out)
				return
			}
		}
	default:
		if !reflect.DeepEqual(a.Interface(), b.Interface()) {
			*out = append(*out, fmt.Sprintf("%s: %v vs %v", path, a.Interface(), b.Interface()))
		}
	}
}

func joinPath(path, field string) string {
	if path == "" {
		return field
	}
	return path + "." + field
}

func appendTruncated(path string, out *[]string) {
	if len(*out) == MaxDiffs {
		*out = append(*out, fmt.Sprintf("%s: ... diff truncated at %d entries", path, MaxDiffs))
	}
}
