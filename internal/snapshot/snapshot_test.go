package snapshot_test

// Codec and schema-stability tests. These live in an external test
// package so they can generate real snapshots through the runtime —
// the snapshot package itself stays import-light.

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"corral/internal/invariants"
	"corral/internal/job"
	"corral/internal/runtime"
	"corral/internal/snapshot"
	"corral/internal/topology"
)

// goldenSnapshot captures a pinned run at a pinned point. Any change to
// its encoded bytes is a schema or determinism change and must be a
// deliberate one.
func goldenSnapshot(t *testing.T) *snapshot.Snapshot {
	t.Helper()
	const gbps = 1e9 / 8
	opts := runtime.Options{
		Topology: topology.Config{
			Racks:            2,
			MachinesPerRack:  2,
			SlotsPerMachine:  2,
			NICBandwidth:     10 * gbps,
			Oversubscription: 5,
		},
		BlockSize: 64e6,
		Seed:      1,
		Failures:  []runtime.Failure{{At: 2, Machine: 1, Downtime: 20}},
	}
	j := job.MapReduce(1, "golden", job.Profile{
		InputBytes:   256e6,
		ShuffleBytes: 512e6,
		OutputBytes:  64e6,
		MapTasks:     4,
		ReduceTasks:  2,
		MapRate:      2e8,
		ReduceRate:   2e8,
	})
	snap, err := runtime.CaptureAt(opts, []*job.Job{j}, runtime.CheckpointTarget{SimTime: 4})
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	snap := goldenSnapshot(t)
	raw, err := snapshot.Encode(snap)
	if err != nil {
		t.Fatal(err)
	}
	got, err := snapshot.Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, snap) {
		for _, d := range snapshot.Diff(got, snap) {
			t.Error(d)
		}
		t.Fatal("decode(encode(snap)) != snap")
	}
	// Re-encoding must be canonical: equal snapshots, equal bytes.
	raw2, err := snapshot.Encode(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, raw2) {
		t.Fatal("encoding is not canonical: re-encoding a decoded snapshot changed bytes")
	}
}

// TestGoldenFile pins the version-1 wire format: the committed golden file
// must decode, and regenerating it from the pinned run must reproduce it
// byte for byte. Refresh with UPDATE_SNAPSHOT_GOLDEN=1 after a deliberate
// schema change (and bump snapshot.Version if the change is breaking).
func TestGoldenFile(t *testing.T) {
	golden := filepath.Join("testdata", "golden_v1.snap.json")
	raw, err := snapshot.Encode(goldenSnapshot(t))
	if err != nil {
		t.Fatal(err)
	}
	if os.Getenv("UPDATE_SNAPSHOT_GOLDEN") != "" {
		if err := os.WriteFile(golden, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", golden, len(raw))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with UPDATE_SNAPSHOT_GOLDEN=1 go test ./internal/snapshot/ -run TestGoldenFile)", err)
	}
	if !bytes.Equal(raw, want) {
		t.Fatalf("snapshot encoding drifted from committed golden file (%d vs %d bytes); "+
			"if the schema change is deliberate, bump snapshot.Version and regenerate with UPDATE_SNAPSHOT_GOLDEN=1",
			len(raw), len(want))
	}
	if _, err := snapshot.Decode(want); err != nil {
		t.Fatalf("committed golden file does not decode: %v", err)
	}
}

// TestPreOverloadSnapshotRestores pins backward compatibility of the PR 8
// additive schema change: testdata/pre_overload_v1.snap.json is a byte
// copy of the golden file as written *before* the overload-hardening
// fields (PlannerBudget, admission queue, suppression state) existed. It
// must still decode — the strict decoder treats missing fields as zero
// values, which are exactly the feature-off defaults — and must still
// resume to a clean, completed run whose replayed state audits against
// the captured (all-zero overload state) section.
func TestPreOverloadSnapshotRestores(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("testdata", "pre_overload_v1.snap.json"))
	if err != nil {
		t.Fatal(err)
	}
	snap, err := snapshot.Decode(raw)
	if err != nil {
		t.Fatalf("pre-PR-8 snapshot no longer decodes: %v", err)
	}
	if snap.Spec.PlannerBudget != 0 || snap.Spec.AdmissionLimit != 0 || snap.Spec.ReplanWindow != 0 {
		t.Fatalf("pre-PR-8 spec decoded non-zero overload fields: %+v", snap.Spec)
	}
	if snap.Spec.FlowEpoch != 0 {
		t.Fatalf("pre-PR-9 spec decoded non-zero FlowEpoch: %+v", snap.Spec)
	}
	topo := snap.Spec.Topology
	mon := invariants.NewMonitor(topo.Machines(), topo.SlotsPerMachine)
	res, err := runtime.Resume(snap, runtime.ResumeOptions{Probe: mon})
	if err != nil {
		t.Fatalf("pre-PR-8 snapshot no longer resumes: %v", err)
	}
	if n := mon.ViolationCount(); n != 0 {
		t.Fatalf("resumed pre-PR-8 run raised %d violations: %v", n, mon.Violations())
	}
	if len(res.Jobs) != 1 || res.Jobs[0].Failed {
		t.Fatalf("resumed pre-PR-8 run did not complete its job: %+v", res.Jobs)
	}
	if res.Deferred != 0 || res.Shed != 0 || res.ReplansSuppressed != 0 || res.Degradations != (runtime.Degradations{}) {
		t.Fatalf("resumed pre-PR-8 run reported overload activity: %+v", res)
	}
}

func TestDecodeRejectsUnknownVersion(t *testing.T) {
	raw, err := snapshot.Encode(goldenSnapshot(t))
	if err != nil {
		t.Fatal(err)
	}
	bumped := bytes.Replace(raw, []byte(`{"version":1,`), []byte(`{"version":99,`), 1)
	if bytes.Equal(bumped, raw) {
		t.Fatal("version field not found in encoded form")
	}
	_, err = snapshot.Decode(bumped)
	if err == nil || !strings.Contains(err.Error(), "version 99 not supported") {
		t.Fatalf("err = %v, want unsupported-version error", err)
	}
	if _, err := snapshot.Decode([]byte(`{"meta":{}}`)); err == nil || !strings.Contains(err.Error(), "missing version") {
		t.Fatalf("err = %v, want missing-version error", err)
	}
	if _, err := snapshot.Decode([]byte(`not json`)); err == nil || !strings.Contains(err.Error(), "not a snapshot file") {
		t.Fatalf("err = %v, want not-a-snapshot error", err)
	}
}

// TestDecodeRejectsCorruptedSection: a single flipped byte in any section
// fails that section's checksum with a clear error — never a partial
// restore.
func TestDecodeRejectsCorruptedSection(t *testing.T) {
	raw, err := snapshot.Encode(goldenSnapshot(t))
	if err != nil {
		t.Fatal(err)
	}
	var env map[string]json.RawMessage
	if err := json.Unmarshal(raw, &env); err != nil {
		t.Fatal(err)
	}
	for _, section := range []string{"meta", "spec", "state"} {
		sec := env[section]
		// Flip one digit somewhere inside the section's raw bytes.
		i := bytes.IndexAny(sec, "0123456789")
		if i < 0 {
			t.Fatalf("%s section has no digit to flip", section)
		}
		corrupted := bytes.Replace(raw, sec, append(append([]byte(nil), sec[:i]...), append([]byte{flip(sec[i])}, sec[i+1:]...)...), 1)
		_, err := snapshot.Decode(corrupted)
		if err == nil || !strings.Contains(err.Error(), section+" section corrupted") {
			t.Fatalf("%s: err = %v, want checksum-mismatch error", section, err)
		}
	}
}

func flip(d byte) byte {
	if d == '9' {
		return '8'
	}
	return d + 1
}

// TestDecodeRejectsSchemaDrift: an unknown field in a section (a snapshot
// from a same-version build with extra fields) fails the strict decode
// even when its checksum is valid.
func TestDecodeRejectsSchemaDrift(t *testing.T) {
	raw, err := snapshot.Encode(goldenSnapshot(t))
	if err != nil {
		t.Fatal(err)
	}
	var env map[string]json.RawMessage
	if err := json.Unmarshal(raw, &env); err != nil {
		t.Fatal(err)
	}
	// Inject an unknown field into meta and recompute its checksum so the
	// corruption check passes and the strict decode is what must catch it.
	meta := env["meta"]
	drifted := append([]byte(`{"Bogus":1,`), meta[1:]...)
	env["meta"] = drifted
	var sums map[string]string
	if err := json.Unmarshal(env["sums"], &sums); err != nil {
		t.Fatal(err)
	}
	sums["meta"] = snapshot.Checksum(drifted)
	sraw, err := json.Marshal(sums)
	if err != nil {
		t.Fatal(err)
	}
	env["sums"] = sraw
	reassembled, err := json.Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	_, err = snapshot.Decode(reassembled)
	if err == nil || !strings.Contains(err.Error(), "malformed meta section") {
		t.Fatalf("err = %v, want malformed-meta error", err)
	}
}
