package snapshot

// Versioned snapshot codec. The on-disk form is a JSON envelope holding
// the schema version, the three sections as raw JSON, and a sha256 per
// section:
//
//	{"version":1,"meta":{...},"spec":{...},"state":{...},
//	 "sums":{"meta":"<hex>","spec":"<hex>","state":"<hex>"}}
//
// Decode is strict by construction — it either returns the exact snapshot
// that was encoded or an error, never a partial restore:
//
//   - an unknown or newer version fails before any section is touched;
//   - a flipped byte anywhere in a section fails its checksum;
//   - an unknown field (schema drift) fails the strict section decode.
//
// Encoding is deterministic: encoding/json emits struct fields in
// declaration order, sorts map keys, and formats floats shortest
// round-trip, so equal snapshots encode to equal bytes.

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

type envelope struct {
	Version int             `json:"version"`
	Meta    json.RawMessage `json:"meta"`
	Spec    json.RawMessage `json:"spec"`
	State   json.RawMessage `json:"state"`
	Sums    sums            `json:"sums"`
}

type sums struct {
	Meta  string `json:"meta"`
	Spec  string `json:"spec"`
	State string `json:"state"`
}

// Checksum is the per-section integrity hash (sha256, hex).
func Checksum(b []byte) string {
	h := sha256.Sum256(b)
	return hex.EncodeToString(h[:])
}

func sum(b []byte) string { return Checksum(b) }

// Encode serializes the snapshot to its canonical byte form.
func Encode(s *Snapshot) ([]byte, error) {
	if s == nil {
		return nil, fmt.Errorf("snapshot: encoding nil snapshot")
	}
	meta, err := json.Marshal(&s.Meta)
	if err != nil {
		return nil, fmt.Errorf("snapshot: encoding meta: %w", err)
	}
	spec, err := json.Marshal(&s.Spec)
	if err != nil {
		return nil, fmt.Errorf("snapshot: encoding spec: %w", err)
	}
	state, err := json.Marshal(&s.State)
	if err != nil {
		return nil, fmt.Errorf("snapshot: encoding state: %w", err)
	}
	env := envelope{
		Version: s.Version,
		Meta:    meta,
		Spec:    spec,
		State:   state,
		Sums:    sums{Meta: sum(meta), Spec: sum(spec), State: sum(state)},
	}
	return json.Marshal(&env)
}

// Decode parses a snapshot, rejecting unknown versions, corrupted sections
// and schema drift with a clear error. It never returns a partially
// populated snapshot.
func Decode(data []byte) (*Snapshot, error) {
	// Loose version probe first: a snapshot from a future schema must fail
	// on its version, not on whatever field it added.
	var probe struct {
		Version *int `json:"version"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return nil, fmt.Errorf("snapshot: not a snapshot file: %w", err)
	}
	if probe.Version == nil {
		return nil, fmt.Errorf("snapshot: not a snapshot file: missing version")
	}
	if *probe.Version != Version {
		return nil, fmt.Errorf("snapshot: version %d not supported (this build reads version %d)", *probe.Version, Version)
	}
	var env envelope
	if err := strictUnmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("snapshot: malformed envelope: %w", err)
	}
	for _, sec := range []struct {
		name string
		raw  json.RawMessage
		want string
	}{
		{"meta", env.Meta, env.Sums.Meta},
		{"spec", env.Spec, env.Sums.Spec},
		{"state", env.State, env.Sums.State},
	} {
		if len(sec.raw) == 0 {
			return nil, fmt.Errorf("snapshot: %s section missing", sec.name)
		}
		if got := sum(sec.raw); got != sec.want {
			return nil, fmt.Errorf("snapshot: %s section corrupted (checksum mismatch)", sec.name)
		}
	}
	s := &Snapshot{Version: env.Version}
	if err := strictUnmarshal(env.Meta, &s.Meta); err != nil {
		return nil, fmt.Errorf("snapshot: malformed meta section: %w", err)
	}
	if err := strictUnmarshal(env.Spec, &s.Spec); err != nil {
		return nil, fmt.Errorf("snapshot: malformed spec section: %w", err)
	}
	if err := strictUnmarshal(env.State, &s.State); err != nil {
		return nil, fmt.Errorf("snapshot: malformed state section: %w", err)
	}
	return s, nil
}

// strictUnmarshal decodes JSON rejecting unknown fields and trailing data.
func strictUnmarshal(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return fmt.Errorf("trailing data after JSON value")
	}
	return nil
}
