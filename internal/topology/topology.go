// Package topology models the two-level datacenter network Corral assumes:
// full bisection bandwidth inside each rack, and oversubscribed links from
// the racks to a non-blocking core (SIGCOMM'15 §1, §3.3).
//
// Machines and racks are identified by dense integer indices. Every machine
// has an uplink (egress) and a downlink (ingress) of NIC capacity; every
// rack has an uplink and downlink to the core of capacity
// machinesPerRack × NIC / oversubscription. Links are registered in a flat
// table so the flow simulator can treat them uniformly.
//
// Determinism obligations: construction is a pure function of the cluster
// shape; machine, rack and link ids are dense and assigned in a fixed
// order, so id-ordered iteration downstream is reproducible.
package topology

import (
	"fmt"
)

// Config describes a cluster. All capacities are in bytes per second.
type Config struct {
	Racks            int     // number of racks
	MachinesPerRack  int     // machines in each rack
	SlotsPerMachine  int     // compute slots per machine
	NICBandwidth     float64 // per-machine NIC capacity, bytes/sec
	Oversubscription float64 // rack-to-core oversubscription ratio V (>= 1)

	// BackgroundPerRack is the portion of each rack uplink AND downlink
	// consumed by background transfers (bytes/sec). The paper emulates
	// background traffic of up to 50% of core bandwidth (§6.1) and sweeps
	// it in Fig 12. Modeled as a capacity reduction.
	BackgroundPerRack float64

	// RemoteStorageBandwidth, when positive, adds a storage-cluster
	// interconnect (§2's Azure/S3 deployment scenario, revisited in §7):
	// job input is fetched from a separate storage cluster through one
	// shared link of this capacity instead of from the local DFS.
	RemoteStorageBandwidth float64
}

// Validate reports whether the configuration is internally consistent.
func (c Config) Validate() error {
	switch {
	case c.Racks <= 0:
		return fmt.Errorf("topology: Racks = %d, must be positive", c.Racks)
	case c.MachinesPerRack <= 0:
		return fmt.Errorf("topology: MachinesPerRack = %d, must be positive", c.MachinesPerRack)
	case c.SlotsPerMachine <= 0:
		return fmt.Errorf("topology: SlotsPerMachine = %d, must be positive", c.SlotsPerMachine)
	case c.NICBandwidth <= 0:
		return fmt.Errorf("topology: NICBandwidth = %g, must be positive", c.NICBandwidth)
	case c.Oversubscription < 1:
		return fmt.Errorf("topology: Oversubscription = %g, must be >= 1", c.Oversubscription)
	case c.BackgroundPerRack < 0:
		return fmt.Errorf("topology: BackgroundPerRack = %g, must be >= 0", c.BackgroundPerRack)
	case c.RemoteStorageBandwidth < 0:
		return fmt.Errorf("topology: RemoteStorageBandwidth = %g, must be >= 0", c.RemoteStorageBandwidth)
	}
	if c.BackgroundPerRack >= c.RackUplinkCapacity()+1e-9 && c.BackgroundPerRack > 0 {
		if c.BackgroundPerRack >= c.RackUplinkCapacity() {
			return fmt.Errorf("topology: background traffic %g >= rack uplink capacity %g",
				c.BackgroundPerRack, c.RackUplinkCapacity())
		}
	}
	return nil
}

// Machines returns the total machine count.
func (c Config) Machines() int { return c.Racks * c.MachinesPerRack }

// Slots returns the total slot count.
func (c Config) Slots() int { return c.Machines() * c.SlotsPerMachine }

// RackUplinkCapacity returns the raw (pre-background) capacity of a rack's
// link to the core.
func (c Config) RackUplinkCapacity() float64 {
	return float64(c.MachinesPerRack) * c.NICBandwidth / c.Oversubscription
}

// LinkID identifies one registered link.
type LinkID int

// Link is one capacity-constrained network resource.
type Link struct {
	ID       LinkID
	Name     string
	Capacity float64 // bytes/sec available to simulated flows
}

// Cluster is an instantiated topology with a link registry.
type Cluster struct {
	Config Config
	links  []Link

	machineUp   []LinkID // per machine
	machineDown []LinkID
	rackUp      []LinkID // per rack
	rackDown    []LinkID
	storage     LinkID // -1 when no remote storage is configured
}

// New builds a cluster from a validated config.
func New(cfg Config) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Cluster{Config: cfg}
	m := cfg.Machines()
	c.machineUp = make([]LinkID, m)
	c.machineDown = make([]LinkID, m)
	c.rackUp = make([]LinkID, cfg.Racks)
	c.rackDown = make([]LinkID, cfg.Racks)

	add := func(name string, cap float64) LinkID {
		id := LinkID(len(c.links))
		c.links = append(c.links, Link{ID: id, Name: name, Capacity: cap})
		return id
	}
	for i := 0; i < m; i++ {
		c.machineUp[i] = add(fmt.Sprintf("m%d-up", i), cfg.NICBandwidth)
		c.machineDown[i] = add(fmt.Sprintf("m%d-down", i), cfg.NICBandwidth)
	}
	rackCap := cfg.RackUplinkCapacity() - cfg.BackgroundPerRack
	for r := 0; r < cfg.Racks; r++ {
		c.rackUp[r] = add(fmt.Sprintf("r%d-up", r), rackCap)
		c.rackDown[r] = add(fmt.Sprintf("r%d-down", r), rackCap)
	}
	c.storage = -1
	if cfg.RemoteStorageBandwidth > 0 {
		c.storage = add("storage-interconnect", cfg.RemoteStorageBandwidth)
	}
	return c, nil
}

// MustNew is New for tests and examples with known-good configs.
func MustNew(cfg Config) *Cluster {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Links returns the registered links. The slice is owned by the cluster;
// callers must not modify it.
func (c *Cluster) Links() []Link { return c.links }

// NumLinks returns the number of registered links.
func (c *Cluster) NumLinks() int { return len(c.links) }

// RackOf returns the rack index that machine m belongs to.
func (c *Cluster) RackOf(m int) int { return m / c.Config.MachinesPerRack }

// MachinesInRack returns the machine index range [lo, hi) for rack r.
func (c *Cluster) MachinesInRack(r int) (lo, hi int) {
	return r * c.Config.MachinesPerRack, (r + 1) * c.Config.MachinesPerRack
}

// SameRack reports whether machines a and b share a rack.
func (c *Cluster) SameRack(a, b int) bool { return c.RackOf(a) == c.RackOf(b) }

// RackUplink returns the LinkID for rack r's uplink to the core.
func (c *Cluster) RackUplink(r int) LinkID { return c.rackUp[r] }

// RackDownlink returns the LinkID for rack r's downlink from the core.
func (c *Cluster) RackDownlink(r int) LinkID { return c.rackDown[r] }

// MachineUplink returns machine m's egress link.
func (c *Cluster) MachineUplink(m int) LinkID { return c.machineUp[m] }

// MachineDownlink returns machine m's ingress link.
func (c *Cluster) MachineDownlink(m int) LinkID { return c.machineDown[m] }

// Path returns the ordered links a flow from machine src to machine dst
// traverses, and whether the flow crosses the rack-to-core boundary.
// A flow within one machine uses no network links (nil path).
func (c *Cluster) Path(src, dst int) (path []LinkID, crossRack bool) {
	if src == dst {
		return nil, false
	}
	if c.SameRack(src, dst) {
		// Full bisection bandwidth within the rack: only the NICs constrain.
		return []LinkID{c.machineUp[src], c.machineDown[dst]}, false
	}
	return []LinkID{
		c.machineUp[src],
		c.rackUp[c.RackOf(src)],
		c.rackDown[c.RackOf(dst)],
		c.machineDown[dst],
	}, true
}

// AppendPath is Path writing into a caller-provided buffer (truncated
// first): the zero-allocation variant for hot callers that immediately
// hand the path to Network.StartPath, which interns it and never retains
// the buffer.
func (c *Cluster) AppendPath(buf []LinkID, src, dst int) (path []LinkID, crossRack bool) {
	buf = buf[:0]
	if src == dst {
		return buf, false
	}
	if c.SameRack(src, dst) {
		return append(buf, c.machineUp[src], c.machineDown[dst]), false
	}
	return append(buf,
		c.machineUp[src],
		c.rackUp[c.RackOf(src)],
		c.rackDown[c.RackOf(dst)],
		c.machineDown[dst],
	), true
}

// IsRackBoundary reports whether link id is a rack uplink or downlink.
// The flow simulator uses this to account cross-rack bytes.
func (c *Cluster) IsRackBoundary(id LinkID) bool {
	firstRackLink := LinkID(2 * c.Config.Machines())
	return id >= firstRackLink && (c.storage < 0 || id != c.storage)
}

// RackOfLink maps a rack uplink or downlink back to its rack index.
// ok is false for machine NICs and the storage interconnect.
func (c *Cluster) RackOfLink(id LinkID) (rack int, uplink bool, ok bool) {
	firstRackLink := LinkID(2 * c.Config.Machines())
	if id < firstRackLink || (c.storage >= 0 && id == c.storage) {
		return 0, false, false
	}
	off := int(id - firstRackLink)
	return off / 2, off%2 == 0, true
}

// StorageLink returns the storage interconnect link and whether remote
// storage is configured.
func (c *Cluster) StorageLink() (LinkID, bool) {
	return c.storage, c.storage >= 0
}

// StoragePath returns the links a fetch from the remote storage cluster to
// machine dst traverses: the shared interconnect, the destination rack's
// downlink and the machine NIC. Panics when remote storage is absent.
func (c *Cluster) StoragePath(dst int) []LinkID {
	if c.storage < 0 {
		panic("topology: StoragePath without remote storage")
	}
	return []LinkID{c.storage, c.rackDown[c.RackOf(dst)], c.machineDown[dst]}
}
