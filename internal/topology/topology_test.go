package topology

import (
	"testing"
	"testing/quick"
)

const gbps = 1e9 / 8 // bytes/sec

func paperConfig() Config {
	return Config{
		Racks:            7,
		MachinesPerRack:  30,
		SlotsPerMachine:  8,
		NICBandwidth:     10 * gbps,
		Oversubscription: 5,
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
		ok     bool
	}{
		{"paper", func(c *Config) {}, true},
		{"zero racks", func(c *Config) { c.Racks = 0 }, false},
		{"zero machines", func(c *Config) { c.MachinesPerRack = 0 }, false},
		{"zero slots", func(c *Config) { c.SlotsPerMachine = 0 }, false},
		{"zero nic", func(c *Config) { c.NICBandwidth = 0 }, false},
		{"undersubscribed", func(c *Config) { c.Oversubscription = 0.5 }, false},
		{"negative background", func(c *Config) { c.BackgroundPerRack = -1 }, false},
		{"background swallows uplink", func(c *Config) { c.BackgroundPerRack = c.RackUplinkCapacity() }, false},
		{"partial background", func(c *Config) { c.BackgroundPerRack = c.RackUplinkCapacity() / 2 }, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := paperConfig()
			tc.mutate(&cfg)
			err := cfg.Validate()
			if tc.ok && err != nil {
				t.Fatalf("Validate() = %v, want nil", err)
			}
			if !tc.ok && err == nil {
				t.Fatal("Validate() = nil, want error")
			}
		})
	}
}

func TestDerivedSizes(t *testing.T) {
	cfg := paperConfig()
	if got := cfg.Machines(); got != 210 {
		t.Errorf("Machines = %d, want 210", got)
	}
	if got := cfg.Slots(); got != 210*8 {
		t.Errorf("Slots = %d, want %d", got, 210*8)
	}
	// 30 machines x 10Gbps / 5 = 60 Gbps, the paper's rack uplink.
	if got := cfg.RackUplinkCapacity(); got != 60*gbps {
		t.Errorf("RackUplinkCapacity = %g, want %g", got, 60*gbps)
	}
}

func TestRackOfAndRanges(t *testing.T) {
	c := MustNew(paperConfig())
	if got := c.RackOf(0); got != 0 {
		t.Errorf("RackOf(0) = %d", got)
	}
	if got := c.RackOf(29); got != 0 {
		t.Errorf("RackOf(29) = %d, want 0", got)
	}
	if got := c.RackOf(30); got != 1 {
		t.Errorf("RackOf(30) = %d, want 1", got)
	}
	lo, hi := c.MachinesInRack(2)
	if lo != 60 || hi != 90 {
		t.Errorf("MachinesInRack(2) = [%d,%d), want [60,90)", lo, hi)
	}
	if !c.SameRack(60, 89) || c.SameRack(59, 60) {
		t.Error("SameRack boundary behavior wrong")
	}
}

func TestPathIntraMachine(t *testing.T) {
	c := MustNew(paperConfig())
	path, cross := c.Path(5, 5)
	if path != nil || cross {
		t.Fatalf("Path(5,5) = %v cross=%v, want nil,false", path, cross)
	}
}

func TestPathIntraRack(t *testing.T) {
	c := MustNew(paperConfig())
	path, cross := c.Path(1, 2)
	if cross {
		t.Fatal("intra-rack path marked cross-rack")
	}
	if len(path) != 2 {
		t.Fatalf("intra-rack path has %d links, want 2", len(path))
	}
	if path[0] != c.MachineUplink(1) || path[1] != c.MachineDownlink(2) {
		t.Fatalf("intra-rack path = %v", path)
	}
	for _, id := range path {
		if c.IsRackBoundary(id) {
			t.Errorf("link %d wrongly marked rack boundary", id)
		}
	}
}

func TestPathCrossRack(t *testing.T) {
	c := MustNew(paperConfig())
	path, cross := c.Path(0, 200)
	if !cross {
		t.Fatal("cross-rack path not marked cross-rack")
	}
	if len(path) != 4 {
		t.Fatalf("cross-rack path has %d links, want 4", len(path))
	}
	want := []LinkID{c.MachineUplink(0), c.RackUplink(0), c.RackDownlink(c.RackOf(200)), c.MachineDownlink(200)}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path[%d] = %v, want %v", i, path[i], want[i])
		}
	}
	boundaries := 0
	for _, id := range path {
		if c.IsRackBoundary(id) {
			boundaries++
		}
	}
	if boundaries != 2 {
		t.Fatalf("cross-rack path crosses %d boundary links, want 2", boundaries)
	}
}

func TestLinkCapacities(t *testing.T) {
	cfg := paperConfig()
	cfg.BackgroundPerRack = 30 * gbps
	c := MustNew(cfg)
	links := c.Links()
	up := links[c.MachineUplink(7)]
	if up.Capacity != cfg.NICBandwidth {
		t.Errorf("machine uplink capacity = %g, want %g", up.Capacity, cfg.NICBandwidth)
	}
	ru := links[c.RackUplink(3)]
	if ru.Capacity != 30*gbps {
		t.Errorf("rack uplink capacity with background = %g, want %g", ru.Capacity, 30*gbps)
	}
}

func TestLinkCount(t *testing.T) {
	c := MustNew(paperConfig())
	want := 2*210 + 2*7
	if got := c.NumLinks(); got != want {
		t.Fatalf("NumLinks = %d, want %d", got, want)
	}
}

// Property: every valid machine pair yields a path whose links exist, with
// cross-rack flagged iff racks differ.
func TestQuickPaths(t *testing.T) {
	c := MustNew(paperConfig())
	n := c.Config.Machines()
	f := func(a, b uint16) bool {
		src, dst := int(a)%n, int(b)%n
		path, cross := c.Path(src, dst)
		if cross != (c.RackOf(src) != c.RackOf(dst)) {
			return false
		}
		for _, id := range path {
			if int(id) < 0 || int(id) >= c.NumLinks() {
				return false
			}
		}
		if src == dst && path != nil {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRemoteStorage(t *testing.T) {
	cfg := paperConfig()
	cfg.RemoteStorageBandwidth = 20 * gbps
	c := MustNew(cfg)
	link, ok := c.StorageLink()
	if !ok {
		t.Fatal("storage link missing")
	}
	if c.IsRackBoundary(link) {
		t.Fatal("storage interconnect misclassified as rack boundary")
	}
	if got := c.Links()[link].Capacity; got != 20*gbps {
		t.Fatalf("storage capacity = %g, want %g", got, 20*gbps)
	}
	path := c.StoragePath(35) // machine 35 is in rack 1
	want := []LinkID{link, c.RackDownlink(1), c.MachineDownlink(35)}
	if len(path) != 3 {
		t.Fatalf("storage path %v", path)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("storage path = %v, want %v", path, want)
		}
	}
}

func TestNoRemoteStorageByDefault(t *testing.T) {
	c := MustNew(paperConfig())
	if _, ok := c.StorageLink(); ok {
		t.Fatal("storage link present without configuration")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("StoragePath without storage did not panic")
		}
	}()
	c.StoragePath(0)
}

func TestNegativeRemoteStorageRejected(t *testing.T) {
	cfg := paperConfig()
	cfg.RemoteStorageBandwidth = -1
	if cfg.Validate() == nil {
		t.Fatal("negative storage bandwidth accepted")
	}
}
