package metrics

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestPercentile(t *testing.T) {
	v := []float64{4, 1, 3, 2, 5}
	if got := Percentile(v, 0); got != 1 {
		t.Fatalf("p0 = %g", got)
	}
	if got := Percentile(v, 1); got != 5 {
		t.Fatalf("p100 = %g", got)
	}
	if got := Percentile(v, 0.5); got != 3 {
		t.Fatalf("p50 = %g", got)
	}
	if !math.IsNaN(Percentile(nil, 0.5)) {
		t.Fatal("empty percentile not NaN")
	}
	// Input must not be mutated.
	if v[0] != 4 {
		t.Fatal("Percentile mutated its input")
	}
}

// TestPercentileInterpolation pins the linear-interpolation contract
// (index q·(n−1), fractional part blends the bracketing ranks) so it
// cannot silently drift to nearest-rank: the chaos/fuzz baselines depend
// on these exact values.
func TestPercentileInterpolation(t *testing.T) {
	cases := []struct {
		values []float64
		q      float64
		want   float64
	}{
		{[]float64{0, 10}, 0.25, 2.5},       // idx 0.25: 0·0.75 + 10·0.25
		{[]float64{0, 10}, 0.5, 5},          // exact midpoint
		{[]float64{1, 2, 3, 4}, 0.5, 2.5},   // even n: blend of middle pair
		{[]float64{1, 2, 3, 4}, 0.95, 3.85}, // idx 2.85: 3·0.15 + 4·0.85
		{[]float64{10, 20, 30}, 0.75, 25},   // idx 1.5
		{[]float64{7}, 0.5, 7},              // single element at any q
		// Nearest-rank would give 4 here; interpolation must not.
		{[]float64{1, 2, 3, 4, 5}, 0.7, 3.8}, // idx 2.8: 3·0.2 + 4·0.8
	}
	for _, c := range cases {
		if got := Percentile(c.values, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Percentile(%v, %g) = %g, want %g", c.values, c.q, got, c.want)
		}
	}
}

func TestPercentileShorthands(t *testing.T) {
	// 101 values 0..100: interpolation lands exactly on integers, so the
	// shorthands must agree with the named ranks.
	v := make([]float64, 101)
	for i := range v {
		v[i] = float64(100 - i) // reversed: order must not matter
	}
	if got := P50(v); got != 50 {
		t.Fatalf("P50 = %g, want 50", got)
	}
	if got := P95(v); got != 95 {
		t.Fatalf("P95 = %g, want 95", got)
	}
	if got := P99(v); got != 99 {
		t.Fatalf("P99 = %g, want 99", got)
	}
	for _, f := range []func([]float64) float64{P50, P95, P99} {
		if !math.IsNaN(f(nil)) {
			t.Fatal("empty shorthand percentile not NaN")
		}
	}
	// Tail ordering: P50 ≤ P95 ≤ P99 on any input with spread.
	w := []float64{1, 1, 2, 3, 100}
	if !(P50(w) <= P95(w) && P95(w) <= P99(w)) {
		t.Fatalf("percentile ordering violated: p50=%g p95=%g p99=%g", P50(w), P95(w), P99(w))
	}
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Fatalf("mean = %g", got)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Fatal("empty mean not NaN")
	}
}

func TestReduction(t *testing.T) {
	if got := Reduction(100, 75); got != 25 {
		t.Fatalf("Reduction = %g, want 25", got)
	}
	if got := Reduction(100, 120); got != -20 {
		t.Fatalf("Reduction = %g, want -20", got)
	}
	if got := Reduction(0, 5); got != 0 {
		t.Fatalf("Reduction with zero base = %g, want 0", got)
	}
}

func TestSlowdown(t *testing.T) {
	cases := []struct {
		name          string
		clean, faulty float64
		want          float64
	}{
		{"faster than clean", 10, 5, 0.5},
		{"unaffected", 10, 10, 1},
		{"2.5x slower", 10, 25, 2.5},
		{"zero clean, nonzero faulty", 0, 5, math.Inf(1)},
		{"both zero", 0, 0, 1},
		{"zero faulty", 10, 0, 0},
	}
	for _, c := range cases {
		if got := Slowdown(c.clean, c.faulty); got != c.want {
			t.Errorf("%s: Slowdown(%g, %g) = %g, want %g",
				c.name, c.clean, c.faulty, got, c.want)
		}
	}
	// The chaos/fuzz report tables format the value with F; an infinite
	// slowdown must render, not panic or print a bogus finite number.
	if got := F(Slowdown(0, 5), 2); got != "+Inf" {
		t.Errorf("F(Slowdown(0, 5), 2) = %q, want \"+Inf\"", got)
	}
}

func TestCoV(t *testing.T) {
	if got := CoV([]float64{5, 5, 5}); got != 0 {
		t.Fatalf("uniform CoV = %g", got)
	}
	got := CoV([]float64{0, 10})
	if math.Abs(got-1) > 1e-9 {
		t.Fatalf("CoV = %g, want 1", got)
	}
	if CoV(nil) != 0 {
		t.Fatal("empty CoV != 0")
	}
}

func TestCDF(t *testing.T) {
	pts := CDF([]float64{3, 1, 2, 4}, 4)
	if len(pts) != 4 {
		t.Fatalf("CDF points = %d", len(pts))
	}
	want := []float64{1, 2, 3, 4}
	for i, p := range pts {
		if p.Value != want[i] {
			t.Fatalf("CDF[%d] = %+v, want value %g", i, p, want[i])
		}
		if p.Fraction != float64(i+1)/4 {
			t.Fatalf("CDF[%d] fraction = %g", i, p.Fraction)
		}
	}
	if CDF(nil, 4) != nil {
		t.Fatal("empty CDF not nil")
	}
}

func TestTableRendering(t *testing.T) {
	tb := Table{Title: "demo", Columns: []string{"name", "value"}}
	tb.AddRow("alpha", F(1.5, 2))
	tb.AddRow("b", Pct(33.3333))
	s := tb.String()
	if !strings.Contains(s, "== demo ==") {
		t.Fatal("missing title")
	}
	if !strings.Contains(s, "1.50") || !strings.Contains(s, "33.3%") {
		t.Fatalf("missing cells in:\n%s", s)
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("rendered %d lines, want 4", len(lines))
	}
}

// Property: percentile is monotone in q and bounded by min/max.
func TestQuickPercentileMonotone(t *testing.T) {
	f := func(raw []float64) bool {
		var v []float64
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				v = append(v, x)
			}
		}
		if len(v) == 0 {
			return true
		}
		sorted := append([]float64(nil), v...)
		sort.Float64s(sorted)
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			p := Percentile(v, q)
			if p < prev-1e-9 || p < sorted[0] || p > sorted[len(sorted)-1] {
				return false
			}
			prev = p
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: CDF values are nondecreasing and end at the max.
func TestQuickCDFMonotone(t *testing.T) {
	f := func(raw []float64) bool {
		var v []float64
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				v = append(v, x)
			}
		}
		if len(v) == 0 {
			return true
		}
		pts := CDF(v, 10)
		prev := math.Inf(-1)
		for _, p := range pts {
			if p.Value < prev {
				return false
			}
			prev = p.Value
		}
		sorted := append([]float64(nil), v...)
		sort.Float64s(sorted)
		return pts[len(pts)-1].Value == sorted[len(sorted)-1]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
