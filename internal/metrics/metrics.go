// Package metrics provides the summary statistics the evaluation reports:
// percentiles/CDFs of completion times, percentage reductions relative to
// a baseline, and coefficient of variation.
//
// Determinism obligations: every statistic is a pure function of its
// input slice. Percentiles and CDFs sort a copy, but means and CoV sum in
// input order — floating-point summation is order-sensitive in the low
// bits, so callers must supply slices built in a deterministic order.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Percentile returns the q-quantile (q in [0,1]) of values by linear
// interpolation between the two closest ranks of a sorted copy (the
// "exclusive" variant over index q·(n−1); numpy's default). Returns NaN
// for empty input.
func Percentile(values []float64, q float64) float64 {
	if len(values) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	idx := q * float64(len(sorted)-1)
	lo := int(math.Floor(idx))
	hi := int(math.Ceil(idx))
	if lo == hi {
		return sorted[lo]
	}
	frac := idx - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// P50 returns the median. Shorthand for Percentile(values, 0.50).
func P50(values []float64) float64 { return Percentile(values, 0.50) }

// P95 returns the 95th percentile, the tail metric the paper's Fig 9
// reports. Shorthand for Percentile(values, 0.95).
func P95(values []float64) float64 { return Percentile(values, 0.95) }

// P99 returns the 99th percentile. Shorthand for Percentile(values, 0.99).
func P99(values []float64) float64 { return Percentile(values, 0.99) }

// Mean returns the arithmetic mean, NaN for empty input.
func Mean(values []float64) float64 {
	if len(values) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, v := range values {
		s += v
	}
	return s / float64(len(values))
}

// Reduction returns the percentage reduction of value relative to base:
// 100·(base − value)/base. Positive means value improved on base.
func Reduction(base, value float64) float64 {
	if base == 0 {
		return 0
	}
	return 100 * (base - value) / base
}

// Slowdown returns the multiplicative slowdown of faulty relative to clean:
// faulty/clean. 1 means unaffected, 2 means twice as slow. A zero clean
// baseline with nonzero faulty is an infinite slowdown (+Inf); only 0/0 —
// both runs free — reports 1.
func Slowdown(clean, faulty float64) float64 {
	if clean == 0 {
		if faulty > 0 {
			return math.Inf(1)
		}
		return 1
	}
	return faulty / clean
}

// CoV returns the coefficient of variation (σ/μ), 0 for empty or zero-mean
// input.
func CoV(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	mean := Mean(values)
	if mean == 0 {
		return 0
	}
	variance := 0.0
	for _, v := range values {
		d := v - mean
		variance += d * d
	}
	variance /= float64(len(values))
	return math.Sqrt(variance) / mean
}

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	Value    float64
	Fraction float64
}

// CDF returns the empirical CDF of values at n evenly spaced fractions
// (plus the max at fraction 1).
func CDF(values []float64, n int) []CDFPoint {
	if len(values) == 0 || n <= 0 {
		return nil
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	out := make([]CDFPoint, 0, n)
	for i := 1; i <= n; i++ {
		f := float64(i) / float64(n)
		idx := int(math.Ceil(f*float64(len(sorted)))) - 1
		if idx < 0 {
			idx = 0
		}
		out = append(out, CDFPoint{Value: sorted[idx], Fraction: f})
	}
	return out
}

// Table is a simple fixed-column text table for experiment output.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// F formats a float at the given precision for table cells.
func F(v float64, prec int) string { return fmt.Sprintf("%.*f", prec, v) }

// Pct formats a percentage cell.
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", v) }

// D formats an integer count for table cells.
func D(n int) string { return fmt.Sprintf("%d", n) }
