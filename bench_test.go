package corral_test

// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation, each running the corresponding experiment end to end
// (workload generation, offline planning, full cluster simulation) and
// reporting the key reproduced quantity as a custom metric.
//
// Size defaults to the fast "s" profile so `go test -bench=.` completes in
// well under a minute; set CORRAL_BENCH_SIZE=m (or l) to run the scaled
// 7-rack profile the EXPERIMENTS.md numbers are quoted from.

import (
	"os"
	"testing"

	"corral"
)

func benchSize(b *testing.B) corral.ExperimentSize {
	switch os.Getenv("CORRAL_BENCH_SIZE") {
	case "m", "medium":
		return corral.SizeMedium
	case "l", "large", "full":
		return corral.SizeLarge
	default:
		return corral.SizeSmall
	}
}

// benchExperiment runs one experiment per iteration and republishes the
// named outcome values as benchmark metrics.
func benchExperiment(b *testing.B, id string, metricKeys ...string) {
	b.Helper()
	size := benchSize(b)
	var last *corral.ExperimentReport
	for i := 0; i < b.N; i++ {
		r, err := corral.RunExperiment(id, size, 1)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	for _, k := range metricKeys {
		if v, ok := last.Values[k]; ok {
			b.ReportMetric(v, k)
		}
	}
}

func BenchmarkFig1_RecurringPredictability(b *testing.B) {
	benchExperiment(b, "fig1", "prediction_mape_pct")
}

func BenchmarkFig2_SlotsCDF(b *testing.B) {
	benchExperiment(b, "fig2", "cluster1_under_one_rack_frac")
}

func BenchmarkTable1_W3Characteristics(b *testing.B) {
	benchExperiment(b, "table1", "input_gb_p50", "shuffle_gb_p95")
}

func BenchmarkLPGap(b *testing.B) {
	benchExperiment(b, "lpgap", "W1_batch_gap_pct")
}

func BenchmarkFig5_PlannerScaling(b *testing.B) {
	benchExperiment(b, "fig5")
}

func BenchmarkFig6_BatchMakespan(b *testing.B) {
	benchExperiment(b, "fig6", "W1_corral_makespan_reduction_pct")
}

func BenchmarkFig7a_CrossRack(b *testing.B) {
	benchExperiment(b, "fig7a", "W1_corral_crossrack_reduction_pct")
}

func BenchmarkFig7b_ComputeHours(b *testing.B) {
	benchExperiment(b, "fig7b", "W1_corral_computehours_reduction_pct")
}

func BenchmarkFig7c_ReduceTimes(b *testing.B) {
	benchExperiment(b, "fig7c", "reduce_time_median_reduction_pct")
}

func BenchmarkFig8_OnlineCDF(b *testing.B) {
	benchExperiment(b, "fig8", "W1_median_reduction_pct")
}

func BenchmarkFig9_BySize(b *testing.B) {
	benchExperiment(b, "fig9", "large_corral_avg_reduction_pct")
}

func BenchmarkFig10_TPCH(b *testing.B) {
	benchExperiment(b, "fig10", "median_reduction_pct", "mean_reduction_pct")
}

func BenchmarkFig11_AdHocMix(b *testing.B) {
	benchExperiment(b, "fig11", "recurring_mean_reduction_pct", "adhoc_makespan_reduction_pct")
}

func BenchmarkFig12_BackgroundSweep(b *testing.B) {
	benchExperiment(b, "fig12", "makespan_reduction_pct_bg50", "makespan_reduction_pct_bg67")
}

func BenchmarkFig13a_SizeError(b *testing.B) {
	benchExperiment(b, "fig13a", "makespan_reduction_pct_err50")
}

func BenchmarkFig13b_ArrivalError(b *testing.B) {
	benchExperiment(b, "fig13b", "avgtime_reduction_pct_delayed50")
}

func BenchmarkFig14_FlowSchedulers(b *testing.B) {
	benchExperiment(b, "fig14", "corral+tcp_median_reduction_pct", "corral+varys_median_reduction_pct")
}

func BenchmarkDataBalance(b *testing.B) {
	benchExperiment(b, "balance", "cov_corral", "cov_hdfs")
}

func BenchmarkAblationAlpha(b *testing.B) {
	benchExperiment(b, "ablation-alpha", "cov_alpha_on", "cov_alpha_off")
}

func BenchmarkAblationProvision(b *testing.B) {
	benchExperiment(b, "ablation-provision", "makespan_full", "makespan_onerack")
}

func BenchmarkAblationPriority(b *testing.B) {
	benchExperiment(b, "ablation-priority", "makespan_widest_first", "makespan_plain_lpt")
}

func BenchmarkAblationDelay(b *testing.B) {
	benchExperiment(b, "ablation-delay")
}

// Micro-benchmarks of the core components.

func BenchmarkPlannerBatch100Jobs(b *testing.B) {
	cluster := corral.DefaultCluster()
	jobs := corral.W1(corral.WorkloadConfig{Seed: 1, Jobs: 100})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := corral.PlanBatch(cluster, jobs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLPBound100Jobs(b *testing.B) {
	cluster := corral.DefaultCluster()
	jobs := corral.W1(corral.WorkloadConfig{Seed: 1, Jobs: 100})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if corral.BatchLowerBound(cluster, jobs) <= 0 {
			b.Fatal("bad bound")
		}
	}
}

func BenchmarkSimulateSmallBatch(b *testing.B) {
	cluster := corral.ClusterConfig{
		Racks: 4, MachinesPerRack: 4, SlotsPerMachine: 2,
		NICBandwidth: 10e9 / 8, Oversubscription: 5,
	}
	jobs := corral.W1(corral.WorkloadConfig{Seed: 1, Jobs: 12, Scale: 1.0 / 20, TaskScale: 1.0 / 20})
	plan, err := corral.PlanBatch(cluster, jobs)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := corral.Simulate(corral.SimConfig{
			Cluster: cluster, Scheduler: corral.SchedulerCorral, Plan: plan, Seed: 1,
		}, corral.CloneJobs(jobs)); err != nil {
			b.Fatal(err)
		}
	}
}

// Sweep wall-clock benchmarks. The chaos and fuzz experiments fan their
// independent cells (intensity x scheduler, fuzz traces) out over the
// experiment worker pool; the Serial/Parallel pairs capture the wall-clock
// effect of the pool. Only ns/op is reported — the parallel-sweep
// determinism tests prove the Reports are bit-identical for any worker
// count, so there is no semantic metric to track here.

func benchChaosSweep(b *testing.B, workers int) {
	b.Helper()
	corral.SetSweepWorkers(workers)
	defer corral.SetSweepWorkers(0)
	size := benchSize(b)
	intensities := []float64{0.2, 0.4, 0.6}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := corral.RunChaosExperiment(size, 1, intensities); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkChaosSweepSerial(b *testing.B)   { benchChaosSweep(b, 1) }
func BenchmarkChaosSweepParallel(b *testing.B) { benchChaosSweep(b, 0) }

func benchFuzzSweep(b *testing.B, workers int) {
	b.Helper()
	corral.SetSweepWorkers(workers)
	defer corral.SetSweepWorkers(0)
	size := benchSize(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := corral.RunFuzzExperiment(size, 1, 6); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFuzzSweepSerial(b *testing.B)   { benchFuzzSweep(b, 1) }
func BenchmarkFuzzSweepParallel(b *testing.B) { benchFuzzSweep(b, 0) }

func BenchmarkExtRemoteStorage(b *testing.B) {
	benchExperiment(b, "ext-remote", "makespan_reduction_pct")
}

func BenchmarkExtInMemory(b *testing.B) {
	benchExperiment(b, "ext-inmemory", "makespan_reduction_pct")
}

func BenchmarkExtFailures(b *testing.B) {
	benchExperiment(b, "ext-failures", "slowdown_pct")
}

func BenchmarkExtSpeculation(b *testing.B) {
	benchExperiment(b, "ext-speculation", "makespan_speculation")
}

func BenchmarkExtReplan(b *testing.B) {
	benchExperiment(b, "ext-replan", "avg_replan", "avg_oracle")
}

func BenchmarkExtSharedData(b *testing.B) {
	benchExperiment(b, "ext-shared-data", "crossrack_gb_shared", "crossrack_gb_perjob")
}

// Overload-hardening benchmarks: the planner cost model that budgets are
// compared against, an admission-controlled simulation, and the full
// overload sweep (3 configurations x 2 rates under a fault storm). The
// deferred/shed counts and cost-model values are deterministic, so the
// regression gate pins them bit for bit.

func BenchmarkPlannerCostModel(b *testing.B) {
	var sink float64
	for i := 0; i < b.N; i++ {
		for jobs := 1; jobs <= 256; jobs *= 4 {
			for racks := 2; racks <= 32; racks *= 2 {
				sink += corral.PlannerCostFull(jobs, racks, 3*jobs)
				sink += corral.PlannerCostIncremental(jobs, racks, 3*jobs)
			}
		}
	}
	if sink <= 0 {
		b.Fatal("cost model returned nothing")
	}
	b.ReportMetric(corral.PlannerCostFull(100, 16, 300), "cost_full_100j16r")
	b.ReportMetric(corral.PlannerCostIncremental(100, 16, 300), "cost_incremental_100j16r")
}

func BenchmarkAdmissionControl(b *testing.B) {
	cluster := corral.ClusterConfig{
		Racks: 4, MachinesPerRack: 4, SlotsPerMachine: 2,
		NICBandwidth: 10e9 / 8, Oversubscription: 5,
	}
	jobs := corral.W1(corral.WorkloadConfig{Seed: 1, Jobs: 12, Scale: 1.0 / 20, TaskScale: 1.0 / 20})
	for i, j := range jobs {
		j.Arrival = 0.1 * float64(i)
	}
	b.ResetTimer()
	var res *corral.Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = corral.Simulate(corral.SimConfig{
			Cluster: cluster, Seed: 1,
			AdmissionLimit: 2, AdmissionQueueCap: 4,
		}, corral.CloneJobs(jobs))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.Deferred), "deferred")
	b.ReportMetric(float64(res.Shed), "shed")
	b.ReportMetric(float64(res.MaxAdmissionQueue), "peak_queue")
}

func benchOverloadSweep(b *testing.B, workers int) {
	b.Helper()
	corral.SetSweepWorkers(workers)
	defer corral.SetSweepWorkers(0)
	size := benchSize(b)
	var rep *corral.ExperimentReport
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = corral.RunOverloadExperiment(size, 1, []float64{1, 4})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rep.Values["violations_budgeted_r04"], "violations_budgeted_r04")
	b.ReportMetric(rep.Values["suppressed_r04"], "suppressed_r04")
}

func BenchmarkOverloadSweepSerial(b *testing.B)   { benchOverloadSweep(b, 1) }
func BenchmarkOverloadSweepParallel(b *testing.B) { benchOverloadSweep(b, 0) }

// Snapshot-layer benchmarks: the cost of capturing a mid-flight snapshot
// (simulate to the midpoint + deep state export), of encoding it to the
// canonical checksummed byte form, and of a full restore (replay to the
// capture point + field-level audit + run to completion). Snapshot size in
// bytes is reported as a semantic metric — it is a deterministic function
// of the pinned scenario, so the regression gate pins it bit for bit.

func snapshotScenario(b *testing.B) (*corral.Snapshot, []byte) {
	b.Helper()
	snap, err := corral.CaptureScenarioSnapshot(benchSize(b), 1, corral.CheckpointTarget{EventIndex: 150})
	if err != nil {
		b.Fatal(err)
	}
	raw, err := corral.EncodeSnapshot(snap)
	if err != nil {
		b.Fatal(err)
	}
	return snap, raw
}

func BenchmarkSnapshotCapture(b *testing.B) {
	var raw []byte
	for i := 0; i < b.N; i++ {
		_, raw = snapshotScenario(b)
	}
	b.ReportMetric(float64(len(raw)), "snapshot_bytes")
}

func BenchmarkSnapshotEncode(b *testing.B) {
	snap, _ := snapshotScenario(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		raw, err := corral.EncodeSnapshot(snap)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := corral.DecodeSnapshot(raw); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSnapshotResume(b *testing.B) {
	_, raw := snapshotScenario(b)
	b.ResetTimer()
	var res *corral.Result
	for i := 0; i < b.N; i++ {
		snap, err := corral.DecodeSnapshot(raw)
		if err != nil {
			b.Fatal(err)
		}
		res, err = corral.ResumeSnapshot(snap, corral.ResumeOptions{})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Makespan, "makespan_s")
}

// Datacenter-scale planning benchmarks: one full two-phase plan over the
// scale suite's 2k- and 10k-machine cell shapes (J·(R−1)+1 provisioning
// candidates: ~9.8k at 2k machines, ~89.6k at 10k). ns/op is the headline
// number the provisioning fast path is gated on (advisory, -tol percent);
// the plan's objective value is republished as a semantic metric so any
// change to planner *output* is pinned bit for bit.
func benchPlan(b *testing.B, machines int) {
	b.Helper()
	cluster := corral.ClusterConfig{
		Racks: machines / 40, MachinesPerRack: 40, SlotsPerMachine: 2,
		NICBandwidth: 10e9 / 8, Oversubscription: 5,
	}
	jobs := corral.W1(corral.WorkloadConfig{
		Seed: 1, Jobs: 160 + machines/50,
		Scale: 1.0 / 8, TaskScale: 1.0 / 8,
		ArrivalWindow: float64(machines) / 20,
	})
	b.ResetTimer()
	var plan *corral.Plan
	for i := 0; i < b.N; i++ {
		var err error
		plan, err = corral.PlanOnline(cluster, jobs)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(plan.AvgCompletion, "plan_objective_s")
}

func BenchmarkPlan2k(b *testing.B)  { benchPlan(b, 2000) }
func BenchmarkPlan10k(b *testing.B) { benchPlan(b, 10000) }

// BenchmarkScaleSweep runs the datacenter-scale fast-path suite end to end
// (size s: the 2000-machine cell with its determinism and snapshot/resume
// verification) and republishes its semantic outcomes. The wallclock_* keys
// are deliberately not republished: corralbench -compare gates on semantic
// metrics only, and host timing lives in the ns/op column.
func BenchmarkScaleSweep(b *testing.B) {
	benchExperiment(b, "scale",
		"machines_2000_events", "machines_2000_makespan", "machines_2000_jobs",
		"machines_2000_plan_objective", "cells", "verification_failures")
}
